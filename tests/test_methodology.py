"""Integration tests of the 3-step methodology.

These run real (small) explorations: a restricted DDT candidate set on
short traces keeps them fast while exercising every step end to end.
"""

import pytest

from repro.apps import DrrApp, UrlApp
from repro.core.application_level import (
    explore_application_level,
    profile_dominant_structures,
)
from repro.core.methodology import DDTRefinement
from repro.core.network_level import explore_network_level
from repro.core.pareto_level import curve_for, explore_pareto_level, pareto_records
from repro.core.selection import ParetoSelection, QuantileUnion
from repro.core.simulate import SimulationEnvironment, run_simulation
from repro.net.config import NetworkConfig

CANDIDATES = ("AR", "SLL", "DLL(O)", "SLL(AR)")
SMALL = NetworkConfig("Whittemore")
CONFIGS = [NetworkConfig("Whittemore"), NetworkConfig("Sudikoff")]


@pytest.fixture(scope="module")
def env():
    return SimulationEnvironment()


@pytest.fixture(scope="module")
def url_result(env):
    refinement = DDTRefinement(
        UrlApp, configs=CONFIGS, candidates=CANDIDATES, env=env
    )
    return refinement.run()


class TestSimulate:
    def test_record_identity(self, env):
        record = run_simulation(
            UrlApp, SMALL, {"url_pattern": "AR", "connection": "SLL"}, env
        )
        assert record.app_name == "URL"
        assert record.config_label == "Whittemore"
        assert record.combo_label == "AR+SLL"
        assert record.metrics.accesses > 0
        assert record.wall_time_s > 0

    def test_deterministic(self, env):
        a = run_simulation(UrlApp, SMALL, {"url_pattern": "AR", "connection": "AR"}, env)
        b = run_simulation(UrlApp, SMALL, {"url_pattern": "AR", "connection": "AR"}, env)
        assert a.metrics == b.metrics
        assert a.stats == b.stats

    def test_repeats_average_identical(self):
        env = SimulationEnvironment(repeats=3)
        record = run_simulation(
            UrlApp, SMALL, {"url_pattern": "SLL", "connection": "SLL"}, env
        )
        single = run_simulation(
            UrlApp, SMALL, {"url_pattern": "SLL", "connection": "SLL"},
            SimulationEnvironment(),
        )
        assert record.metrics == single.metrics

    def test_trace_cache_shared(self, env):
        t1 = env.trace_for(SMALL)
        t2 = env.trace_for(NetworkConfig("Whittemore", {"x": 1}))
        assert t1 is t2  # same trace name -> same cached object

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            SimulationEnvironment(repeats=0)


class TestProfiling:
    def test_dominance_ranking(self, env):
        profile = profile_dominant_structures(UrlApp, SMALL, env)
        assert set(profile) == {"url_pattern", "connection"}
        counts = list(profile.values())
        assert counts == sorted(counts, reverse=True)
        assert all(c > 0 for c in counts)


class TestStep1:
    def test_explores_all_combinations(self, env):
        step1 = explore_application_level(
            UrlApp, SMALL, candidates=CANDIDATES, env=env
        )
        assert step1.simulations == len(CANDIDATES) ** 2
        assert len(step1.log) == step1.simulations
        assert 0 < len(step1.survivors) <= step1.simulations

    def test_survivors_subset_of_combos(self, env):
        step1 = explore_application_level(
            UrlApp, SMALL, candidates=CANDIDATES, env=env
        )
        assert set(step1.survivors) <= set(step1.log.combos())

    def test_progress_callback(self, env):
        calls = []
        explore_application_level(
            UrlApp,
            SMALL,
            candidates=("AR", "SLL"),
            env=env,
            progress=lambda done, total, label: calls.append((done, total)),
        )
        assert calls[0] == (1, 4)
        assert calls[-1] == (4, 4)

    def test_custom_policy(self, env):
        step1 = explore_application_level(
            UrlApp, SMALL, candidates=CANDIDATES, policy=ParetoSelection(), env=env
        )
        # Pareto set of the reference config survives
        assert step1.survivors


class TestStep2:
    def test_survivors_times_configs(self, env):
        step1 = explore_application_level(
            UrlApp, SMALL, candidates=CANDIDATES, env=env
        )
        step2 = explore_network_level(UrlApp, step1, CONFIGS, env=env)
        survivors = len(dict.fromkeys(step1.survivors))
        assert len(step2.log) == survivors * len(CONFIGS)
        # reference config records reused, not re-simulated
        assert step2.simulations == survivors * (len(CONFIGS) - 1)

    def test_empty_configs_rejected(self, env):
        step1 = explore_application_level(
            UrlApp, SMALL, candidates=("AR",), env=env
        )
        with pytest.raises(ValueError):
            explore_network_level(UrlApp, step1, [], env=env)


class TestStep3:
    def test_curves_per_config(self, url_result):
        step3 = url_result.step3
        for pair in (("time_s", "energy_mj"), ("accesses", "footprint_bytes")):
            assert set(step3.curves[pair]) == {c.label for c in CONFIGS}
            for curve in step3.curves[pair].values():
                assert curve.is_valid_front()

    def test_pareto_sets_nondominated(self, url_result):
        for config_label, records in url_result.step3.pareto_sets.items():
            assert records
            for a in records:
                assert not any(
                    b.metrics.dominates(a.metrics) for b in records if b is not a
                )

    def test_trade_offs_bounded(self, url_result):
        for metric, value in url_result.step3.trade_offs.items():
            assert 0.0 <= value < 1.0

    def test_front_points_exist_in_log(self, url_result):
        log = url_result.step2.log
        curve = url_result.step3.curves[("time_s", "energy_mj")]["Whittemore"]
        for point in curve.points:
            assert log.lookup("Whittemore", point.label) is not None

    def test_empty_log_rejected(self):
        from repro.core.results import ExplorationLog

        with pytest.raises(ValueError):
            explore_pareto_level(ExplorationLog())


class TestRefinementAccounting:
    def test_exhaustive_count(self, url_result):
        assert url_result.exhaustive_simulations == len(CANDIDATES) ** 2 * len(CONFIGS)

    def test_reduced_leq_exhaustive(self, url_result):
        assert url_result.reduced_simulations <= url_result.exhaustive_simulations

    def test_reduced_accounting(self, url_result):
        survivors = len(dict.fromkeys(url_result.step1.survivors))
        expected = len(CANDIDATES) ** 2 + survivors * (len(CONFIGS) - 1)
        assert url_result.reduced_simulations == expected

    def test_summary_row(self, url_result):
        name, exhaustive, reduced, pareto = url_result.summary_row()
        assert name == "URL"
        assert pareto == url_result.pareto_optimal_count
        assert pareto >= 1

    def test_pareto_subset_of_survivors(self, url_result):
        combos = set(url_result.step3.pareto_optimal_combos())
        assert combos <= set(url_result.step1.survivors)


class TestReductionSoundness:
    """The paper's pruning must not lose Pareto-optimal points."""

    def test_reduced_front_matches_exhaustive_front(self, env):
        """On the reference config, the front from the reduced log equals
        the front computed from an exhaustive log."""
        candidates = ("AR", "SLL", "DLL(O)")
        step1 = explore_application_level(
            DrrApp, SMALL, candidates=candidates, env=env
        )
        exhaustive_front = {
            r.combo_label for r in pareto_records(step1.log, "Whittemore")
        }
        # survivors always contain the exhaustive 4D front
        assert exhaustive_front <= set(step1.survivors)
        # and the 2D curves computed from survivors match
        survivors_log = step1.log.filter(
            lambda r: r.combo_label in set(step1.survivors)
        )
        full_curve = curve_for(step1.log, "Whittemore", "time_s", "energy_mj")
        reduced_curve = curve_for(survivors_log, "Whittemore", "time_s", "energy_mj")
        assert set(full_curve.labels()) == set(reduced_curve.labels())

"""Tests of the campaign scheduler: parity, sharding, trace reuse, CLI.

The campaign must be pure orchestration: per application, a campaign
run (serial or parallel, cold or warm) produces records bit-identical
to a standalone serial :class:`DDTRefinement` -- only the scheduling
changes.  Sweeps are deliberately narrowed (4 candidate DDTs, 2
configurations per app) to keep the full four-app parity test fast.
"""

import json
import os

import pytest

from repro.core.campaign import CampaignScheduler
from repro.core.casestudies import CASE_STUDIES, case_study
from repro.core.engine import ExplorationEngine, ShardedSimulationCache
from repro.core.methodology import DDTRefinement
from repro.net.config import NetworkConfig
from repro.tools import explore

CANDIDATES = ("AR", "SLL", "DLL(O)", "SLL(AR)")

#: Two configurations per app (the first is each study's reference).
NARROW = {
    study.name: list(study.configs[:2]) for study in CASE_STUDIES
}


def _serial_reference():
    """Four standalone serial refinements, the parity baseline."""
    results = {}
    for study in CASE_STUDIES:
        results[study.name] = DDTRefinement(
            study.app_cls, configs=NARROW[study.name], candidates=CANDIDATES
        ).run()
    return results


@pytest.fixture(scope="module")
def serial_results():
    return _serial_reference()


def assert_matches_serial(campaign_result, serial_results):
    assert list(campaign_result.refinements) == [s.name for s in CASE_STUDIES]
    for name, serial in serial_results.items():
        scheduled = campaign_result.refinements[name]
        assert [r.content_key() for r in scheduled.step1.log] == [
            r.content_key() for r in serial.step1.log
        ]
        assert scheduled.step1.survivors == serial.step1.survivors
        assert [r.content_key() for r in scheduled.step2.log] == [
            r.content_key() for r in serial.step2.log
        ]
        assert scheduled.summary_row() == serial.summary_row()
        assert scheduled.step3.trade_offs == serial.step3.trade_offs


class TestSerialParity:
    def test_all_four_apps_bit_identical(self, serial_results):
        with CampaignScheduler(candidates=CANDIDATES, configs=NARROW) as campaign:
            result = campaign.run()
        assert_matches_serial(result, serial_results)
        assert result.stats.simulations == sum(
            r.reduced_simulations for r in serial_results.values()
        )

    def test_summary_accounting(self, serial_results):
        with CampaignScheduler(candidates=CANDIDATES, configs=NARROW) as campaign:
            result = campaign.run()
        assert len(result) == 4
        assert result.total_reduced_simulations() == sum(
            r.reduced_simulations for r in serial_results.values()
        )
        assert result.total_exhaustive_simulations() == sum(
            r.exhaustive_simulations for r in serial_results.values()
        )
        rows = result.pareto_summary()
        assert [row[0] for row in rows] == [s.name for s in CASE_STUDIES]

    def test_cross_app_front_is_a_front(self):
        with CampaignScheduler(
            studies=["url", "drr"],
            candidates=CANDIDATES,
            configs={"URL": NARROW["URL"], "DRR": NARROW["DRR"]},
        ) as campaign:
            front = campaign.run().cross_app_front()
        assert front  # never empty: each app contributes its extremes
        times = [p.time_frac for p in front]
        energies = [p.energy_frac for p in front]
        assert times == sorted(times)
        assert energies == sorted(energies, reverse=True)
        assert all(0.0 <= v <= 1.0 for v in times + energies)


class TestParallelParity:
    def test_two_workers_bit_identical_to_four_serial_runs(
        self, serial_results, tmp_path
    ):
        """The acceptance run: campaign over all apps on 2 workers."""
        with CampaignScheduler(
            candidates=CANDIDATES,
            configs=NARROW,
            workers=2,
            trace_store=tmp_path / "traces",
        ) as campaign:
            result = campaign.run()
        assert_matches_serial(result, serial_results)


class TestCacheSharding:
    def test_per_app_shard_isolation_and_warm_replay(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with CampaignScheduler(
            candidates=CANDIDATES, configs=NARROW, cache=cache_dir
        ) as campaign:
            cold = campaign.run()
        assert isinstance(campaign.engine.cache, ShardedSimulationCache)

        # one subdirectory per app, each holding only that app's records
        # (plus the campaign manifest recorded next to the shards)
        assert (cache_dir / "campaign-manifest.json").exists()
        subdirs = sorted(d for d in os.listdir(cache_dir) if (cache_dir / d).is_dir())
        assert subdirs == sorted(s.name.lower() for s in CASE_STUDIES)
        for study in CASE_STUDIES:
            shard_dir = cache_dir / study.name.lower()
            shards = os.listdir(shard_dir)
            # streaming keys records per trace: one shard per distinct
            # trace of the app's sweep
            traces = {c.trace_name for c in NARROW[study.name]}
            assert len(shards) == len(traces)
            for shard in shards:
                with open(shard_dir / shard, encoding="utf-8") as handle:
                    payload = json.load(handle)
                assert payload["app"] == study.name
                apps = {r["app_name"] for r in payload["records"].values()}
                assert apps == {study.name}

        with CampaignScheduler(
            candidates=CANDIDATES, configs=NARROW, cache=cache_dir
        ) as campaign:
            warm = campaign.run()
        assert warm.stats.simulations == 0
        assert warm.stats.cache_hits == cold.stats.simulations
        assert warm.summary_rows() == cold.summary_rows()

    def test_shared_engine_not_closed(self, tmp_path):
        engine = ExplorationEngine(cache=tmp_path)
        with CampaignScheduler(
            studies=["drr"],
            candidates=CANDIDATES,
            configs={"DRR": NARROW["DRR"]},
            engine=engine,
        ) as campaign:
            campaign.run()
        # the scheduler does not own a supplied engine: still usable
        engine.run_batch(
            case_study("DRR").app_cls,
            [(NARROW["DRR"][0], {"flow_queue": "SLL", "packet_buf": "SLL"})],
        )
        engine.close()


class TestTraceStoreIntegration:
    def test_warm_store_performs_zero_generations(self, tmp_path):
        store_dir = tmp_path / "traces"
        with CampaignScheduler(
            candidates=CANDIDATES, configs=NARROW, trace_store=store_dir
        ) as campaign:
            cold = campaign.run()
        needed = {c.trace_name for configs in NARROW.values() for c in configs}
        assert cold.trace_counters["generations"] == len(needed)

        with CampaignScheduler(
            candidates=CANDIDATES, configs=NARROW, trace_store=store_dir
        ) as campaign:
            warm = campaign.run()
        assert warm.trace_counters["generations"] == 0
        assert warm.trace_counters["disk_loads"] == len(needed)
        assert warm.summary_rows() == cold.summary_rows()
        for name in cold.refinements:
            assert [r.content_key() for r in warm.refinements[name].step2.log] == [
                r.content_key() for r in cold.refinements[name].step2.log
            ]

    def test_engine_prewarns_store_before_parallel_batch(self, tmp_path):
        store_dir = tmp_path / "traces"
        with CampaignScheduler(
            studies=["url"],
            candidates=CANDIDATES,
            configs={"URL": NARROW["URL"]},
            workers=2,
            trace_store=store_dir,
        ) as campaign:
            result = campaign.run()
        # the parent generated every trace before the workers ran
        assert result.trace_counters["generations"] == len(
            {c.trace_name for c in NARROW["URL"]}
        )
        assert sorted(os.listdir(store_dir))  # persisted for the workers


class TestSensitivityGrids:
    def test_grid_expands_configs_and_accounting(self):
        grids = {"DRR": {"quantum": [256, 512]}}
        scheduler = CampaignScheduler(
            studies=["drr"],
            candidates=CANDIDATES,
            configs={"DRR": NARROW["DRR"]},
            grids=grids,
        )
        configs = scheduler.configs_for("DRR")
        base = len(NARROW["DRR"])
        traces = len({c.trace_name for c in case_study("DRR").configs})
        assert len(configs) == base + traces * 2
        result = scheduler.run()
        scheduler.close()
        refinement = result.refinements["DRR"]
        assert refinement.exhaustive_simulations == len(CANDIDATES) ** 2 * len(
            configs
        )
        assert set(refinement.step2.log.configs()) == {c.label for c in configs}

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="unknown apps"):
            CampaignScheduler(studies=["url"], grids={"Route": {"x": [1]}})
        with pytest.raises(ValueError, match="unknown apps"):
            CampaignScheduler(
                studies=["url"], configs={"Route": [NetworkConfig("ANL")]}
            )
        with pytest.raises(ValueError, match="duplicate"):
            CampaignScheduler(studies=["url", "URL"])
        with pytest.raises(ValueError, match="at least one"):
            CampaignScheduler(studies=[])


class TestCampaignCli:
    def test_end_to_end_run(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        code = explore.main(
            [
                "campaign",
                "--apps",
                "url",
                "drr",
                "--candidates",
                "AR",
                "SLL",
                "--cache",
                str(tmp_path / "cache"),
                "--trace-store",
                str(tmp_path / "traces"),
                "--out",
                str(out_dir),
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign: 2 case studies" in out
        assert "trace store:" in out
        assert "Cross-app normalised time-energy front" in out
        for app in ("url", "drr"):
            assert (out_dir / app / "exploration_log.csv").exists()
        assert sorted(os.listdir(tmp_path / "cache")) == [
            "campaign-manifest.json",
            "drr",
            "url",
        ]

    def test_grid_option_parsing(self):
        grids = explore._parse_grids(["route:radix_size=64,512", "url:x=a"])
        assert grids == {"Route": {"radix_size": [64, 512]}, "URL": {"x": ["a"]}}
        with pytest.raises(SystemExit):
            explore._parse_grids(["route=radix_size"])
        with pytest.raises(SystemExit):
            explore._parse_grids(["route:radix_size="])
        with pytest.raises(SystemExit, match="unknown case study"):
            explore._parse_grids(["nope:x=1"])

    def test_unknown_app_exits_cleanly(self):
        with pytest.raises(SystemExit, match="unknown case study"):
            explore.main(["campaign", "--apps", "rout"])

    def test_grid_overlapping_base_sweep_deduplicated(self):
        study = case_study("Route")
        scheduler = CampaignScheduler(
            studies=["route"],
            grids={"Route": {"radix_size": [128, 512]}},
        )
        labels = [c.label for c in scheduler.configs_for("Route")]
        assert len(labels) == len(set(labels))
        # base sweep (128, 256) + only the novel 512 grid configs
        assert len(labels) == len(study.configs) + len(study.trace_names())
        scheduler.close()

    def test_rejects_negative_workers(self):
        with pytest.raises(SystemExit):
            explore.main(["campaign", "--workers", "-1"])

    def test_resume_requires_streaming(self):
        with pytest.raises(SystemExit):
            explore.main(["campaign", "--resume", "--no-streaming"])

    def test_resume_run_reports_incremental(self, tmp_path, capsys):
        args = [
            "campaign",
            "--apps",
            "drr",
            "--candidates",
            "AR",
            "SLL",
            "--cache",
            str(tmp_path / "cache"),
            "--out",
            str(tmp_path / "results"),
            "--quiet",
        ]
        assert explore.main(args) == 0
        capsys.readouterr()
        assert explore.main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "incremental: " in out
        assert "unchanged" in out
        assert "engine: 0 simulated" in out

    def test_no_streaming_runs_barrier_schedule(self, tmp_path, capsys):
        code = explore.main(
            [
                "campaign",
                "--apps",
                "drr",
                "--candidates",
                "AR",
                "SLL",
                "--no-streaming",
                "--out",
                str(tmp_path / "results"),
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "barrier" in out
        assert "incremental:" not in out  # legacy schedule has no report

    def test_single_case_cli_still_works(self, capsys):
        assert explore.main(["url", "--profile-only"]) == 0
        assert "dominant-structure profile" in capsys.readouterr().out

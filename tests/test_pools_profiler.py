"""Tests for memory pools, the profiler and the timing model."""

import pytest

from repro.core.metrics import MetricVector
from repro.memory.cacti import CactiModel
from repro.memory.pools import MemoryPool
from repro.memory.profiler import MemoryProfiler
from repro.memory.timing import CpuModel, OperationCosts


def make_pool(name="test", **kwargs):
    cacti = CactiModel()
    cpu = CpuModel()
    return MemoryPool(name, cacti=cacti, cpu=cpu, **kwargs), cpu


class TestAccessCounting:
    def test_reads_and_writes_accumulate(self):
        pool, _ = make_pool()
        pool.read(3)
        pool.write(2)
        pool.read_stream(10)
        pool.write_stream(5)
        assert pool.reads == 13
        assert pool.writes == 7
        assert pool.accesses == 20

    def test_zero_and_negative_words_ignored(self):
        pool, _ = make_pool()
        pool.read(0)
        pool.read(-4)
        pool.write_stream(0)
        assert pool.accesses == 0

    def test_dependent_vs_stream_separated(self):
        pool, _ = make_pool()
        pool.read(5)
        pool.read_stream(5)
        assert pool.dep_reads == 5
        assert pool.stream_reads == 5


class TestEnergyAndCycles:
    def test_energy_scales_with_footprint(self):
        """Same accesses, bigger peak footprint => more energy."""
        small, _ = make_pool()
        big, _ = make_pool()
        small.allocate(256)
        big.allocate(64 * 1024)
        small.read(1000)
        big.read(1000)
        assert big.energy_pj > small.energy_pj

    def test_streaming_same_energy_fewer_cycles(self):
        dep, _ = make_pool()
        stream, _ = make_pool()
        dep.allocate(1024)
        stream.allocate(1024)
        dep.read(1000)
        stream.read_stream(1000)
        assert dep.energy_pj == pytest.approx(stream.energy_pj)
        assert stream.memory_cycles < dep.memory_cycles

    def test_energy_uses_peak_not_live(self):
        """Energy is provisioned for the peak footprint."""
        pool, _ = make_pool()
        block = pool.allocate(64 * 1024)
        pool.free(block)
        assert pool.live_bytes == 0
        baseline = pool.energy_pj
        pool.read(1000)
        grown = pool.energy_pj
        # per-access energy reflects the 64 KiB peak, not the empty heap
        small, _ = make_pool()
        small.allocate(64)
        small.read(1000)
        assert (grown - baseline) > small.energy_pj

    def test_write_energy_exceeds_read_energy(self):
        a, _ = make_pool()
        b, _ = make_pool()
        a.read(100)
        b.write(100)
        assert b.energy_pj > a.energy_pj

    def test_invalid_stream_fraction(self):
        cacti, cpu = CactiModel(), CpuModel()
        with pytest.raises(ValueError):
            MemoryPool("x", cacti, cpu, stream_cycle_fraction=0.0)
        with pytest.raises(ValueError):
            MemoryPool("x", cacti, cpu, stream_cycle_fraction=1.5)


class TestAllocationCharging:
    def test_allocate_counts_bookkeeping_accesses(self):
        pool, cpu = make_pool()
        pool.allocate(64)
        assert pool.accesses == 3  # 1 read + 2 writes of metadata
        assert cpu.cpu_cycles == cpu.costs.allocator_call

    def test_free_counts_bookkeeping(self):
        pool, cpu = make_pool()
        block = pool.allocate(64)
        pool.free(block)
        assert pool.accesses == 6
        assert cpu.cpu_cycles == 2 * cpu.costs.allocator_call

    def test_footprint_tracks_peak(self):
        pool, _ = make_pool()
        blocks = [pool.allocate(100) for _ in range(5)]
        for b in blocks:
            pool.free(b)
        assert pool.live_bytes == 0
        assert pool.footprint_bytes == 5 * pool.allocator.gross_size(100)


class TestCpuModel:
    def test_cycles_accumulate_and_convert(self):
        cpu = CpuModel(clock_hz=1e9)
        cpu.charge_cpu(500)
        cpu.charge_memory(500)
        assert cpu.total_cycles == 1000
        assert cpu.seconds == pytest.approx(1e-6)

    def test_negative_cycles_rejected(self):
        cpu = CpuModel()
        with pytest.raises(ValueError):
            cpu.charge_cpu(-1)
        with pytest.raises(ValueError):
            cpu.charge_memory(-1)

    def test_reset(self):
        cpu = CpuModel()
        cpu.charge_cpu(10)
        cpu.reset()
        assert cpu.total_cycles == 0

    def test_invalid_clock(self):
        with pytest.raises(ValueError):
            CpuModel(clock_hz=0)

    def test_invalid_costs(self):
        with pytest.raises(ValueError):
            OperationCosts(step=-1)


class TestMemoryProfiler:
    def test_new_pool_is_idempotent(self):
        profiler = MemoryProfiler()
        a = profiler.new_pool("x")
        b = profiler.new_pool("x")
        assert a is b
        assert len(profiler.pools) == 1

    def test_pool_lookup(self):
        profiler = MemoryProfiler()
        pool = profiler.new_pool("rtentry")
        assert profiler.pool("rtentry") is pool
        with pytest.raises(KeyError):
            profiler.pool("missing")

    def test_metrics_aggregate_pools(self):
        profiler = MemoryProfiler()
        a = profiler.new_pool("a")
        b = profiler.new_pool("b")
        a.allocate(100)
        b.allocate(200)
        a.read(10)
        b.write(20)
        m = profiler.metrics()
        assert isinstance(m, MetricVector)
        assert m.accesses == a.accesses + b.accesses
        assert m.footprint_bytes == a.footprint_bytes + b.footprint_bytes
        assert m.energy_mj > 0
        assert m.time_s > 0

    def test_packet_overhead_charged(self):
        profiler = MemoryProfiler()
        profiler.charge_packet_overhead()
        assert profiler.cpu.cpu_cycles == profiler.cpu.costs.packet_overhead

    def test_metrics_snapshot_consistent(self):
        """Taking metrics twice without activity yields equal vectors."""
        profiler = MemoryProfiler()
        pool = profiler.new_pool("x")
        pool.allocate(128)
        pool.read(7)
        assert profiler.metrics() == profiler.metrics()

    def test_custom_models_accepted(self):
        cacti = CactiModel(min_capacity_bytes=2048)
        profiler = MemoryProfiler(cacti=cacti, clock_hz=2e9)
        assert profiler.cacti is cacti
        assert profiler.cpu.clock_hz == 2e9

    def test_pool_snapshots(self):
        profiler = MemoryProfiler()
        profiler.new_pool("a").read(5)
        snaps = profiler.pool_snapshots()
        assert len(snaps) == 1
        assert snaps[0]["name"] == "a"
        assert snaps[0]["reads"] == 5

"""Tests for design-constraint filtering and sensitivity analysis."""

import pytest

from repro.core.constraints import DesignConstraints, feasible_records, recommend
from repro.core.metrics import MetricVector
from repro.core.results import ExplorationLog, SimulationRecord
from repro.core.sensitivity import (
    regret_table,
    robust_choice,
    winner_diversity,
    winners_by_config,
)


def record(combo, config="cfg", e=1.0, t=1.0, a=100, f=1000):
    return SimulationRecord(
        app_name="Test",
        config_label=config,
        combo_label=combo,
        metrics=MetricVector(energy_mj=e, time_s=t, accesses=a, footprint_bytes=f),
    )


class TestDesignConstraints:
    def test_unbounded_accepts_everything(self):
        c = DesignConstraints()
        assert not c.is_bounded
        assert c.satisfied_by(record("X", e=1e9, f=10**9).metrics)

    def test_bounds_enforced(self):
        c = DesignConstraints(max_energy_mj=2.0, max_footprint_bytes=1500)
        assert c.is_bounded
        assert c.satisfied_by(record("X", e=1.5, f=1400).metrics)
        assert not c.satisfied_by(record("X", e=2.5, f=1400).metrics)
        assert not c.satisfied_by(record("X", e=1.5, f=1600).metrics)

    def test_violations_quantified(self):
        c = DesignConstraints(max_energy_mj=1.0, max_time_s=1.0)
        v = c.violations(record("X", e=1.5, t=0.5).metrics)
        assert v == {"energy_mj": pytest.approx(0.5)}

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            DesignConstraints(max_energy_mj=0)
        with pytest.raises(ValueError):
            DesignConstraints(max_accesses=-5)

    def test_feasible_records(self):
        pool = [record("A", e=1), record("B", e=3)]
        kept = feasible_records(pool, DesignConstraints(max_energy_mj=2))
        assert [r.combo_label for r in kept] == ["A"]


class TestRecommend:
    def test_feasible_choice_minimises_weighted_score(self):
        pool = [
            record("FAST", e=4.0, t=1.0),
            record("LEAN", e=1.0, t=4.0),
            record("MID", e=2.0, t=2.0),
        ]
        energy_first = recommend(pool, weights={"energy_mj": 1.0})
        assert energy_first.choice.combo_label == "LEAN"
        time_first = recommend(pool, weights={"time_s": 1.0})
        assert time_first.choice.combo_label == "FAST"

    def test_constraints_limit_pool(self):
        pool = [record("A", e=1.0, t=5.0), record("B", e=5.0, t=1.0)]
        report = recommend(pool, DesignConstraints(max_time_s=2.0))
        assert report.choice.combo_label == "B"
        assert report.feasible_combos == ["B"]
        assert len(report.infeasible) == 1

    def test_nothing_feasible_reports_nearest_miss(self):
        pool = [record("A", e=10.0), record("B", e=4.0)]
        report = recommend(pool, DesignConstraints(max_energy_mj=1.0))
        assert report.choice is None
        assert report.nearest_miss.combo_label == "B"

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            recommend([])

    def test_unknown_weight_metric(self):
        with pytest.raises(KeyError):
            recommend([record("A")], weights={"nope": 1.0})


def two_config_log():
    """A log where the energy winner flips between configurations."""
    return ExplorationLog(
        [
            record("AR+AR", "c1", e=1.0, t=3.0),
            record("SLL+SLL", "c1", e=2.0, t=1.0),
            record("DLL+DLL", "c1", e=3.0, t=2.0),
            record("AR+AR", "c2", e=4.0, t=3.0),
            record("SLL+SLL", "c2", e=1.0, t=2.0),
            record("DLL+DLL", "c2", e=2.0, t=1.0),
        ]
    )


class TestSensitivity:
    def test_winners_by_config(self):
        winners = winners_by_config(two_config_log(), "energy_mj")
        assert winners == {"c1": "AR+AR", "c2": "SLL+SLL"}

    def test_winner_diversity(self):
        diversity = winner_diversity(two_config_log())
        assert diversity["energy_mj"] == 2  # winner flips -> step 2 matters
        assert diversity["time_s"] == 2

    def test_regret_table_sorted_by_max_regret(self):
        table = regret_table(two_config_log(), "energy_mj")
        assert [e.combo_label for e in table][0] == "SLL+SLL"
        regrets = [e.max_regret for e in table]
        assert regrets == sorted(regrets)

    def test_regret_values(self):
        table = {e.combo_label: e for e in regret_table(two_config_log(), "energy_mj")}
        # SLL+SLL: c1 regret 2/1-1=1.0, c2 regret 0 -> max 1.0
        assert table["SLL+SLL"].max_regret == pytest.approx(1.0)
        assert table["SLL+SLL"].worst_config == "c1"
        # AR+AR: c1 0, c2 4/1-1=3 -> max 3.0
        assert table["AR+AR"].max_regret == pytest.approx(3.0)

    def test_robust_choice_minimax(self):
        choice = robust_choice(two_config_log(), "energy_mj")
        assert choice.combo_label == "SLL+SLL"

    def test_partial_coverage_excluded(self):
        log = two_config_log()
        log.add(record("ONLY_C1", "c1", e=0.5))
        table = regret_table(log, "energy_mj")
        assert "ONLY_C1" not in [e.combo_label for e in table]

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            winners_by_config(two_config_log(), "nope")
        with pytest.raises(KeyError):
            regret_table(two_config_log(), "nope")

    def test_empty_log(self):
        with pytest.raises(ValueError):
            regret_table(ExplorationLog(), "energy_mj")

    def test_no_common_combo(self):
        log = ExplorationLog([record("A", "c1"), record("B", "c2")])
        with pytest.raises(ValueError, match="every configuration"):
            robust_choice(log, "energy_mj")
